// Fixture for the suppression mechanism, clean side: every finding is
// covered by a well-formed //lint:allow with a reason, on the same
// line or alone on the line above. Running det-maprange over this
// package must produce zero findings.
package allowclean

import "sort"

func sameLine(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //lint:allow det-maprange keys are sorted below before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func lineAbove(m map[string]int) int {
	n := 0
	//lint:allow det-maprange only the count is observed, order cannot leak
	for range m {
		n++
	}
	return n
}
