// Fixture for hot-sprintf: fmt.Sprintf is a finding in hot-path
// packages; concatenation and non-Sprintf fmt calls are fine.
package hotsprintf

import (
	"fmt"
	"strconv"
)

func name(i int) string {
	return fmt.Sprintf("action-%d", i) // want "fmt.Sprintf in a hot-path package"
}

func nameConcat(i int) string {
	return "action-" + strconv.Itoa(i) // the concat idiom: fine
}

func report(err error) error {
	return fmt.Errorf("wrapped: %w", err) // Errorf is error-path, not name-building: fine
}
