// Fixture for simcall-in-handler: ActionDone implementations (the
// completion-handler interface below is registered in the test config)
// must not reach the blocking entry point proc.BlockOn through any
// chain of in-package calls.
package simcallhandler

// Completion mirrors surf.Completion (registered via
// cfg.CompletionIfaces).
type Completion interface {
	ActionDone(err error)
}

// proc mirrors core.Process; BlockOn is registered via
// cfg.BlockingFuncs.
type proc struct{}

func (p *proc) BlockOn() error { return nil }

var current proc

// direct blocks straight from the handler.
type direct struct{}

func (d *direct) ActionDone(err error) { // want "completion handler .*direct.*ActionDone can reach blocking"
	current.BlockOn()
}

// chained blocks through two in-package hops.
type chained struct{}

func (c *chained) ActionDone(err error) { // want "completion handler .*chained.*ActionDone can reach blocking"
	hop1()
}

func hop1() { hop2() }
func hop2() { current.BlockOn() }

// clean never blocks: bookkeeping only.
type clean struct{}

func (c *clean) ActionDone(err error) {
	record(err)
}

func record(err error) {}

// notHandler has the method name but does not implement Completion
// (wrong signature), so it is not a root.
type notHandler struct{}

func (n *notHandler) ActionDone(err error, extra int) {
	current.BlockOn()
}
