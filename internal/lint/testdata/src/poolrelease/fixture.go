// Fixture for pool-use-after-release: reads of a variable after a
// Release()/RemoveVariable() statement in the same block are findings
// until the variable is reassigned.
package poolrelease

type obj struct{ n int }

func (o *obj) Release()              {}
func (o *obj) Touch() int            { return o.n }
func get() *obj                      { return &obj{} }
func use(o *obj)                     {}
func (s *sys) RemoveVariable(o *obj) {}

type sys struct{}

func methodRelease() {
	o := get()
	use(o)
	o.Release()
	use(o) // want "use of o after o.Release"
}

func funcRelease(s *sys) {
	o := get()
	s.RemoveVariable(o)
	_ = o.Touch() // want "use of o after RemoveVariable"
}

func readThenRelease() {
	o := get()
	use(o)
	o.Release() // last touch: fine
}

func reassigned() {
	o := get()
	o.Release()
	o = get() // fresh object: o is safe again
	use(o)
}

func branchScoped(cond bool) {
	o := get()
	if cond {
		o.Release()
		return // release only poisons this branch's tail
	}
	use(o) // only reached when not released: fine
}

func branchViolation(cond bool) {
	o := get()
	o.Release()
	if cond {
		use(o) // want "use of o after o.Release"
	}
}

func laterInBranch(cond bool) {
	o := get()
	if cond {
		o.Release()
		use(o) // want "use of o after o.Release"
	}
}
