// Fixture for det-goroutine: go statements are findings unless the
// enclosing function is on the approved spawn-site allowlist (the test
// config approves Spawn below).
package detgoroutine

func work() {}

func rogue() {
	go work() // want "go statement in .*rogue.* is not an approved spawn site"
}

func rogueNested() {
	f := func() {
		go work() // want "go statement in .*rogueNested.* is not an approved spawn site"
	}
	f()
}

// Spawn is the fixture's approved spawn site (cfg.GoroutineAllow).
func Spawn(fn func()) {
	go fn() // allowlisted: no finding
}

func plainCall() {
	work() // not a go statement: fine
}
