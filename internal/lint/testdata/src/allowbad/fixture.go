// Fixture for the suppression mechanism, failure side: a reason-less
// allow, an unknown rule name, and a stale allow are all findings (and
// a reason-less allow does NOT suppress the violation it sits on).
package allowbad

func missingReason(m map[string]int) int {
	n := 0
	for range m { //lint:allow det-maprange
		n++
	}
	return n
}

func unknownRule(m map[string]int) int {
	n := 0
	for range m { //lint:allow det-mapwalk order does not matter here
		n++
	}
	return n
}

//lint:allow det-maprange nothing ranges over a map here anymore
func stale(s []int) int {
	n := 0
	for range s {
		n++
	}
	return n
}
