// Fixture for det-maprange: positive cases range over map-typed
// values, negative cases iterate slices (including slices built from a
// map and sorted).
package detmaprange

import "sort"

type table map[string]int // named map type: still a map underneath

func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

func keysOnly(m map[string]int) int {
	n := 0
	for range m { // want "range over map"
		n++
	}
	return n
}

func namedMap(t table) int {
	n := 0
	for k := range t { // want "range over map"
		n += len(k)
	}
	return n
}

func sortedWalk(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceWalk(s []int) int {
	total := 0
	for _, v := range s { // slices iterate in index order: fine
		total += v
	}
	return total
}

func channelWalk(c chan int) int {
	total := 0
	for v := range c { // channel receive order is program order: fine
		total += v
	}
	return total
}
