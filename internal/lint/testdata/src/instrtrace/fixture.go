// Fixture for trace-emission code under the determinism contract
// (instr is in both DetPkgs and WallclockPkgs): emitting per-container
// events by ranging a map is order-unstable, so the trace bytes would
// differ between runs — a finding. The sanctioned shapes are walking a
// creation-ordered slice, and a single report-only self-timing seam
// carrying an explicit allow.
package instrtrace

import "time"

type emitter struct {
	order  []string           // container aliases in creation order
	byName map[string]float64 // alias -> last emitted value
}

// emitUnordered is the bug this fixture pins: map order leaks straight
// into event order, so two runs of the same simulation produce
// different trace bytes.
func (e *emitter) emitUnordered(emit func(string, float64)) {
	for name, v := range e.byName { // want "range over map"
		emit(name, v)
	}
}

// emitOrdered walks the creation-order slice: trace bytes are a pure
// function of the run.
func (e *emitter) emitOrdered(emit func(string, float64)) {
	for _, name := range e.order {
		emit(name, e.byName[name])
	}
}

// stampEvent reads the host clock into an event timestamp: the trace
// would never be bit-identical across runs.
func stampEvent() int64 {
	return time.Now().UnixNano() // want "wallclock read time.Now"
}

// profileNow is the sanctioned profiler seam: the reading is
// report-only and never reaches simulation state or trace bytes, and
// the allow says so.
func profileNow() time.Time {
	return time.Now() //lint:allow det-wallclock profiler self-timing is report-only, never in trace bytes
}

// simStamp derives an event timestamp from simulated time: pure
// arithmetic, no clock read.
func simStamp(simNow float64) float64 {
	return simNow
}
