// Fixture for pool-literal, violation side: constructing or scrubbing
// the pooled type outside its factory file.
package poolliteral

func bypassFactory() *Pooled {
	return &Pooled{id: 1} // want "pooled type .*Pooled constructed by composite literal outside its factory"
}

func bypassValue() Pooled {
	return Pooled{} // want "pooled type .*Pooled constructed by composite literal outside its factory"
}

func rogueScrub(p *Pooled) {
	*p = Pooled{} // want "pooled type .*Pooled constructed by composite literal outside its factory"
}

type unpooled struct{ id int }

func otherLiteral() *unpooled {
	return &unpooled{id: 2} // not a pooled type: fine
}

func viaFactory() *Pooled {
	return Grab() // the sanctioned path
}
