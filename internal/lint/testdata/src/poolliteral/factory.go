// Fixture for pool-literal, factory side: this file is configured as
// the factory for Pooled, so its literals are sanctioned.
package poolliteral

// Pooled stands in for a pooled kernel object (maxmin.Variable,
// surf.Action, …); the test config registers it with factory.go as its
// only factory file.
type Pooled struct {
	id   int
	data []byte
}

var pool []*Pooled

// Grab is the factory: literals here are fine.
func Grab() *Pooled {
	if n := len(pool); n > 0 {
		p := pool[n-1]
		pool = pool[:n-1]
		return p
	}
	return &Pooled{} // factory file: no finding
}

// Scrub resets a released object; the scrub literal is also sanctioned
// here.
func Scrub(p *Pooled) {
	*p = Pooled{} // factory file: no finding
	pool = append(pool, p)
}
