package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// runSimcallInHandler enforces the simcall blocking contract on
// completion handlers: ActionDone (and any other Completion-interface
// method) runs in kernel context, on the kernel turn's stack, so a
// path from a handler to a blocking simcall entry point (Process.Block,
// BlockOn, WaitActivity, Sleep, …) would park the kernel itself. The
// check builds an in-package static call graph (an approximation:
// calls through interfaces or function values are not followed) and
// reports every handler method from which a blocking entry point is
// reachable.
func runSimcallInHandler(p *Package, cfg *Config) []Finding {
	if len(cfg.CompletionIfaces) == 0 || len(cfg.BlockingFuncs) == 0 {
		return nil
	}
	ifaces := resolveIfaces(p, cfg.CompletionIfaces)
	if len(ifaces) == 0 {
		return nil
	}

	// Collect this package's function declarations and their static
	// call edges, in source order for deterministic reports.
	type edge struct {
		callee *types.Func
		pos    string // "file:line" of the call site, for the message
	}
	decls := make(map[*types.Func]*ast.FuncDecl)
	edges := make(map[*types.Func][]edge)
	var order []*types.Func
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			order = append(order, fn)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var callee *types.Func
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					callee, _ = p.Info.Uses[fun].(*types.Func)
				case *ast.SelectorExpr:
					callee, _ = p.Info.Uses[fun.Sel].(*types.Func)
				}
				if callee != nil {
					cp := p.Fset.Position(call.Pos())
					edges[fn] = append(edges[fn], edge{callee, fmt.Sprintf("%s:%d", cp.Filename, cp.Line)})
				}
				return true
			})
		}
	}

	var out []Finding
	for _, root := range order {
		fd := decls[root]
		if fd.Recv == nil || !isHandlerMethod(p, root, ifaces) {
			continue
		}
		// BFS from the handler through same-package callees; any edge
		// into a blocking entry point is a violation, reported with
		// one witness path.
		type item struct {
			fn   *types.Func
			path []string
		}
		visited := map[*types.Func]bool{root: true}
		queue := []item{{root, []string{root.FullName()}}}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			for _, e := range edges[it.fn] {
				if cfg.BlockingFuncs[e.callee.FullName()] {
					out = append(out, Finding{
						Pos:  p.Fset.Position(fd.Pos()),
						Rule: "simcall-in-handler",
						Msg: fmt.Sprintf("completion handler %s can reach blocking %s (%s, called at %s): handlers run in kernel context and must not block",
							root.FullName(), e.callee.FullName(), strings.Join(it.path, " -> "), e.pos),
					})
					queue = nil // one witness per handler is enough
					break
				}
				if _, local := decls[e.callee]; local && !visited[e.callee] {
					visited[e.callee] = true
					queue = append(queue, item{e.callee, append(append([]string(nil), it.path...), e.callee.FullName())})
				}
			}
		}
	}
	return out
}

// resolveIfaces looks up the configured qualified interface names in
// the package itself or its direct imports; names that resolve to
// nothing are skipped (the package simply does not interact with that
// contract).
func resolveIfaces(p *Package, quals []string) []*types.Interface {
	var out []*types.Interface
	for _, q := range quals {
		dot := strings.LastIndex(q, ".")
		if dot < 0 {
			continue
		}
		pkgPath, name := q[:dot], q[dot+1:]
		var scope *types.Scope
		if pkgPath == p.Path {
			scope = p.Types.Scope()
		} else {
			for _, imp := range p.Types.Imports() {
				if imp.Path() == pkgPath {
					scope = imp.Scope()
					break
				}
			}
		}
		if scope == nil {
			continue
		}
		obj := scope.Lookup(name)
		if obj == nil {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			out = append(out, iface)
		}
	}
	return out
}

// isHandlerMethod reports whether fn is a method whose name belongs to
// one of the completion interfaces and whose receiver type implements
// that interface (by value or by pointer).
func isHandlerMethod(p *Package, fn *types.Func, ifaces []*types.Interface) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	for _, iface := range ifaces {
		named := false
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == fn.Name() {
				named = true
				break
			}
		}
		if !named {
			continue
		}
		if types.Implements(recv, iface) {
			return true
		}
		if _, isPtr := recv.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(recv), iface) {
			return true
		}
	}
	return false
}
