package lint

import (
	"regexp"
	"strconv"
	"testing"
)

// wantRe extracts the quoted regexps of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`^//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)
var wantArgRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one pending `// want` entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Check runs the named rules (plus the suppression machinery) over a
// fixture package and compares the findings against the package's
// `// want "regexp"` comments, analysistest-style: every finding must
// be wanted by a comment on its line, and every want must be matched
// by exactly one finding. Unmatched sides are test failures.
func Check(t *testing.T, p *Package, cfg *Config, rules ...string) {
	t.Helper()
	var wants []*expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, q := range wantArgRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: want pattern %q does not compile: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	for _, f := range Run([]*Package{p}, cfg, rules...) {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Msg) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

// FixtureConfig returns a Config for a self-contained fixture package:
// every scope map is nil (the rule applies everywhere it runs) and the
// release vocabulary matches the fixtures' naming. Tests extend it
// with fixture-local pooled types, allowlists and blocking sets.
func FixtureConfig() *Config {
	return &Config{
		GoroutineAllow: map[string]bool{},
		PooledTypes:    map[string][]string{},
		ReleaseMethods: map[string]bool{"Release": true},
		ReleaseFuncs:   map[string]bool{"RemoveVariable": true},
		BlockingFuncs:  map[string]bool{},
	}
}
