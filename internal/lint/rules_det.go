package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// runMapRange flags range statements over map-typed values: Go
// randomizes map iteration order, so any map walk on a simulation path
// is a reproducibility bug waiting for a hash-seed change (DESIGN.md
// "The simcall layer": identical inputs must replay the identical
// event log).
func runMapRange(p *Package, cfg *Config) []Finding {
	if !inScope(cfg.DetPkgs, p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				out = append(out, Finding{
					Pos:  p.Fset.Position(rs.Pos()),
					Rule: "det-maprange",
					Msg: fmt.Sprintf("range over map %s: iteration order is nondeterministic on a simulation path; iterate a sorted slice instead",
						types.TypeString(t, types.RelativeTo(p.Types))),
				})
			}
			return true
		})
	}
	return out
}

// runWallclock flags reads of the host clock (time.Now/Since/Until)
// and draws from the global math/rand source in simulation packages:
// simulated time comes from the engine clock, and randomness must flow
// from an explicit seed or the run is unreproducible.
func runWallclock(p *Package, cfg *Config) []Finding {
	if !inScope(cfg.WallclockPkgs, p.Path) {
		return nil
	}
	// Constructors that return a locally seeded generator are the
	// sanctioned escape hatch; everything else package-level in
	// math/rand draws from the shared global source.
	seededOK := map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods (e.g. on *rand.Rand) are fine
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if name := fn.Name(); name == "Now" || name == "Since" || name == "Until" {
					out = append(out, Finding{
						Pos:  p.Fset.Position(sel.Pos()),
						Rule: "det-wallclock",
						Msg:  fmt.Sprintf("wallclock read time.%s on a simulation path: simulated time must come from the engine clock", name),
					})
				}
			case "math/rand", "math/rand/v2":
				if !seededOK[fn.Name()] {
					out = append(out, Finding{
						Pos:  p.Fset.Position(sel.Pos()),
						Rule: "det-wallclock",
						Msg:  fmt.Sprintf("global math/rand source via rand.%s: use a local rand.New(rand.NewSource(seed)) so runs replay bit-identically", fn.Name()),
					})
				}
			}
			return true
		})
	}
	return out
}

// runGoroutine flags go statements whose enclosing function is not an
// approved spawn site: kernel paths are goroutine-free by contract
// (the processless SimDag/RunUntilIdle design), and every sanctioned
// spawn site is named in the allowlist or carries an allow annotation.
func runGoroutine(p *Package, cfg *Config) []Finding {
	if !inScope(cfg.DetPkgs, p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			where := "package scope"
			if fd := enclosingFunc(p, f, gs.Pos()); fd != nil {
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					if cfg.GoroutineAllow[fn.FullName()] {
						return true
					}
					where = fn.FullName()
				}
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(gs.Pos()),
				Rule: "det-goroutine",
				Msg:  fmt.Sprintf("go statement in %s is not an approved spawn site: kernel paths must not spawn goroutines", where),
			})
			return true
		})
	}
	return out
}

// runHotSprintf flags fmt.Sprintf in the hot-path packages PR 3
// converted to string concatenation: Sprintf re-parses its format on
// every call and allocates through an interface slice, both of which
// the concat pass removed from per-activity costs.
func runHotSprintf(p *Package, cfg *Config) []Finding {
	if !inScope(cfg.HotPkgs, p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Sprintf" {
				return true
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(sel.Pos()),
				Rule: "hot-sprintf",
				Msg:  "fmt.Sprintf in a hot-path package: build the string by concatenation (strconv + +) as in the PR 3 concat pass",
			})
			return true
		})
	}
	return out
}
