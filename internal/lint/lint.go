package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Msg, f.Rule)
}

// Config scopes and parameterizes the rules. A nil scope map means the
// rule applies to every package it is run on; DefaultConfig narrows
// each rule to the packages whose DESIGN.md contract it enforces.
type Config struct {
	// DetPkgs scopes det-maprange and det-goroutine: the packages whose
	// event order is the reproducibility contract.
	DetPkgs map[string]bool
	// WallclockPkgs scopes det-wallclock.
	WallclockPkgs map[string]bool
	// HotPkgs scopes hot-sprintf: packages whose name-building PR 3
	// converted to concatenation.
	HotPkgs map[string]bool
	// GoroutineAllow holds types.Func.FullName()s of the approved spawn
	// sites; go statements anywhere else in DetPkgs are findings.
	GoroutineAllow map[string]bool
	// PooledTypes maps a qualified type name ("pkg/path.Type") to the
	// base names of its factory files — the only files allowed to
	// construct or scrub it with a composite literal.
	PooledTypes map[string][]string
	// ReleaseMethods are method names whose call releases the receiver
	// back to a pool (x.Release() poisons x).
	ReleaseMethods map[string]bool
	// ReleaseFuncs are function or method names whose call releases
	// their first argument (s.RemoveVariable(v) poisons v).
	ReleaseFuncs map[string]bool
	// BlockingFuncs holds types.Func.FullName()s of the blocking
	// simcall entry points a Completion handler must never reach.
	BlockingFuncs map[string]bool
	// CompletionIfaces are qualified interface names ("pkg/path.Name");
	// methods implementing any of them are the simcall-in-handler
	// roots.
	CompletionIfaces []string
}

func inScope(scope map[string]bool, path string) bool {
	return scope == nil || scope[path]
}

// Rule is one named check.
type Rule struct {
	Name string
	Doc  string
	Run  func(p *Package, cfg *Config) []Finding
}

// Rules returns the registered rules in stable order.
func Rules() []Rule {
	return []Rule{
		{"det-maprange", "no range over a map-typed value on a simulation path", runMapRange},
		{"det-wallclock", "no time.Now/Since/Until or global math/rand source in simulation packages", runWallclock},
		{"det-goroutine", "no go statements outside the approved spawn-site allowlist", runGoroutine},
		{"pool-literal", "pooled types may only be constructed by their factory files", runPoolLiteral},
		{"pool-use-after-release", "no reads of a pooled object after it was released", runUseAfterRelease},
		{"simcall-in-handler", "Completion handlers must not reach a blocking simcall entry point", runSimcallInHandler},
		{"hot-sprintf", "no fmt.Sprintf in concat-converted hot-path packages", runHotSprintf},
	}
}

// RuleNames returns the IDs of all registered rules.
func RuleNames() []string {
	rs := Rules()
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name
	}
	return names
}

// allowPrefix introduces a suppression annotation. The full form is
//
//	//lint:allow <rule> <reason>
//
// placed either on the offending line or alone on the line directly
// above it. The reason is mandatory.
const allowPrefix = "//lint:allow"

// AllowRule is the pseudo-rule under which the suppression machinery
// reports its own findings (malformed, unknown-rule and stale allows).
// It cannot itself be suppressed.
const AllowRule = "allow"

// allow is one parsed, well-formed suppression annotation.
type allow struct {
	pos  token.Position
	rule string
	used bool
}

// Run executes the named rules (all registered rules when ruleNames is
// empty) over pkgs, applies //lint:allow suppressions, validates the
// annotations themselves, and returns the surviving findings sorted by
// position.
func Run(pkgs []*Package, cfg *Config, ruleNames ...string) []Finding {
	if cfg == nil {
		cfg = &Config{}
	}
	selected := Rules()
	if len(ruleNames) > 0 {
		want := make(map[string]bool, len(ruleNames))
		for _, n := range ruleNames {
			want[n] = true
		}
		var rs []Rule
		for _, r := range selected {
			if want[r.Name] {
				rs = append(rs, r)
			}
		}
		selected = rs
	}
	ran := make(map[string]bool, len(selected))
	for _, r := range selected {
		ran[r.Name] = true
	}
	known := make(map[string]bool)
	for _, n := range RuleNames() {
		known[n] = true
	}

	var findings []Finding
	var allows []*allow
	for _, p := range pkgs {
		for _, r := range selected {
			findings = append(findings, r.Run(p, cfg)...)
		}
		as, bad := parseAllows(p, known)
		allows = append(allows, as...)
		findings = append(findings, bad...)
	}

	// Suppression: an allow matches findings of its rule on its own
	// line or the next line of the same file.
	var kept []Finding
	for _, f := range findings {
		if f.Rule == AllowRule {
			kept = append(kept, f)
			continue
		}
		suppressed := false
		for _, a := range allows {
			if a.rule == f.Rule && a.pos.Filename == f.Pos.Filename &&
				(f.Pos.Line == a.pos.Line || f.Pos.Line == a.pos.Line+1) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	// Staleness is only decidable for rules that actually ran.
	for _, a := range allows {
		if !a.used && ran[a.rule] {
			kept = append(kept, Finding{
				Pos:  a.pos,
				Rule: AllowRule,
				Msg:  fmt.Sprintf("stale %s %s: the rule does not fire on this or the next line; remove the annotation", allowPrefix, a.rule),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return kept
}

// parseAllows extracts the suppression annotations of a package.
// Malformed annotations (unknown rule, missing reason) are returned as
// findings under the AllowRule pseudo-rule.
func parseAllows(p *Package, known map[string]bool) ([]*allow, []Finding) {
	var allows []*allow
	var bad []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Finding{Pos: pos, Rule: AllowRule,
						Msg: fmt.Sprintf("malformed %s: missing rule name and reason (want %s <rule> <reason>)", allowPrefix, allowPrefix)})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					bad = append(bad, Finding{Pos: pos, Rule: AllowRule,
						Msg: fmt.Sprintf("%s names unknown rule %q (known: %s)", allowPrefix, rule, strings.Join(RuleNames(), ", "))})
					continue
				}
				if len(fields) == 1 {
					bad = append(bad, Finding{Pos: pos, Rule: AllowRule,
						Msg: fmt.Sprintf("%s %s is missing its reason: every suppression must say why the rule is safe to break here", allowPrefix, rule)})
					continue
				}
				allows = append(allows, &allow{pos: pos, rule: rule})
			}
		}
	}
	return allows, bad
}

// enclosingFunc returns the *types.Func of the FuncDecl that encloses
// pos in file, or nil for positions outside any function declaration.
func enclosingFunc(p *Package, file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
