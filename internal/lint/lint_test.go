package lint

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// One loader for the whole test binary: module-internal packages and
// stdlib dependencies type-check once and are cached.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

func fixture(t *testing.T, name string) *Package {
	t.Helper()
	p, err := testLoader(t).LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return p
}

func TestDetMapRangeFixture(t *testing.T) {
	p := fixture(t, "detmaprange")
	Check(t, p, FixtureConfig(), "det-maprange")
}

func TestDetWallclockFixture(t *testing.T) {
	p := fixture(t, "detwallclock")
	Check(t, p, FixtureConfig(), "det-wallclock")
}

// The instrtrace fixture pins the determinism contract trace-emission
// code lives under (instr is in both DetPkgs and WallclockPkgs): a map
// walk in an emitter reorders events between runs and a host-clock
// timestamp breaks bit-identical traces, while the creation-order
// slice walk and the explicitly allowed profiler seam are clean.
func TestInstrTraceFixture(t *testing.T) {
	p := fixture(t, "instrtrace")
	Check(t, p, FixtureConfig(), "det-maprange", "det-wallclock")
}

// The faultsched fixture pins the determinism contract the faults
// package lives under (it is in both DetPkgs and WallclockPkgs):
// schedule compilation must use locally seeded generators and ordered
// expansion, so both rules run over the same fixture.
func TestFaultSchedFixture(t *testing.T) {
	p := fixture(t, "faultsched")
	Check(t, p, FixtureConfig(), "det-wallclock", "det-maprange")
}

func TestDetGoroutineFixture(t *testing.T) {
	p := fixture(t, "detgoroutine")
	cfg := FixtureConfig()
	cfg.GoroutineAllow[p.Path+".Spawn"] = true
	Check(t, p, cfg, "det-goroutine")
}

func TestPoolLiteralFixture(t *testing.T) {
	p := fixture(t, "poolliteral")
	cfg := FixtureConfig()
	cfg.PooledTypes[p.Path+".Pooled"] = []string{"factory.go"}
	Check(t, p, cfg, "pool-literal")
}

func TestPoolUseAfterReleaseFixture(t *testing.T) {
	p := fixture(t, "poolrelease")
	Check(t, p, FixtureConfig(), "pool-use-after-release")
}

func TestSimcallInHandlerFixture(t *testing.T) {
	p := fixture(t, "simcallhandler")
	cfg := FixtureConfig()
	cfg.CompletionIfaces = []string{p.Path + ".Completion"}
	cfg.BlockingFuncs["(*"+p.Path+".proc).BlockOn"] = true
	Check(t, p, cfg, "simcall-in-handler")
}

func TestHotSprintfFixture(t *testing.T) {
	p := fixture(t, "hotsprintf")
	Check(t, p, FixtureConfig(), "hot-sprintf")
}

// TestAllowClean pins the suppression happy path: both placement forms
// (same line, line above) with a reason suppress the finding, and a
// used allow is not reported as stale. The fixture has no want
// comments, so Check fails on any surviving finding.
func TestAllowClean(t *testing.T) {
	p := fixture(t, "allowclean")
	Check(t, p, FixtureConfig(), "det-maprange")
}

// TestAllowBad pins the suppression failure modes: a reason-less allow
// and an unknown rule name are findings AND do not suppress the
// violation they sit on; a stale allow (rule never fires there) is a
// finding.
func TestAllowBad(t *testing.T) {
	p := fixture(t, "allowbad")
	findings := Run([]*Package{p}, FixtureConfig(), "det-maprange")

	byRule := map[string]int{}
	var allowMsgs []string
	for _, f := range findings {
		byRule[f.Rule]++
		if f.Rule == AllowRule {
			allowMsgs = append(allowMsgs, f.Msg)
		}
	}
	if byRule["det-maprange"] != 2 {
		t.Errorf("want 2 unsuppressed det-maprange findings (malformed allows must not suppress), got %d:\n%s",
			byRule["det-maprange"], dump(findings))
	}
	if byRule[AllowRule] != 3 {
		t.Errorf("want 3 allow-machinery findings, got %d:\n%s", byRule[AllowRule], dump(findings))
	}
	for _, want := range []string{"missing its reason", "unknown rule", "stale"} {
		found := false
		for _, m := range allowMsgs {
			if strings.Contains(m, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no allow-machinery finding mentions %q:\n%s", want, dump(findings))
		}
	}
}

// TestStaleOnlyForExecutedRules pins that an allow for a rule that did
// not run is not reported stale: staleness is only decidable for rules
// that executed.
func TestStaleOnlyForExecutedRules(t *testing.T) {
	p := fixture(t, "allowclean")
	// Run a rule that never fires in this fixture; the det-maprange
	// allows must not be flagged stale because det-maprange never ran.
	if findings := Run([]*Package{p}, FixtureConfig(), "hot-sprintf"); len(findings) != 0 {
		t.Errorf("allows for a non-executed rule reported: \n%s", dump(findings))
	}
}

// TestRuleRegistry pins the advertised rule set: the 7 contract rules,
// stable IDs, no duplicates.
func TestRuleRegistry(t *testing.T) {
	want := []string{
		"det-maprange", "det-wallclock", "det-goroutine",
		"pool-literal", "pool-use-after-release",
		"simcall-in-handler", "hot-sprintf",
	}
	got := RuleNames()
	if len(got) != len(want) {
		t.Fatalf("rule registry: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rule registry: got %v, want %v", got, want)
		}
	}
}

// TestInjectedViolationFails pins the command's contract end to end at
// the library level: a tree with a violation yields findings (the
// driver then exits non-zero), and the same tree with the violation
// suppressed-with-reason is clean.
func TestInjectedViolationFails(t *testing.T) {
	p := fixture(t, "detmaprange")
	if len(Run([]*Package{p}, FixtureConfig(), "det-maprange")) == 0 {
		t.Fatal("injected map-range violations produced no findings")
	}
}

// TestModuleClean is the real gate: the whole module, under the
// shipped DefaultConfig, must be finding-free — every contract either
// holds or carries a reasoned allow. This is exactly what
// `go run ./cmd/simgrid-lint ./...` checks in CI.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped under -short")
	}
	pkgs, err := testLoader(t).LoadPatterns("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("module walk found only %d packages, expected the full tree", len(pkgs))
	}
	findings := Run(pkgs, DefaultConfig())
	if len(findings) > 0 {
		t.Errorf("module is not lint-clean (%d findings):\n%s", len(findings), dump(findings))
	}
}

func dump(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
