package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// runPoolLiteral flags composite literals of pooled types outside
// their factory files. The free lists only work if every construction
// and every scrub goes through the factory (DESIGN.md "Object
// lifecycle & pooling"): a stray &maxmin.Variable{} bypasses the pool
// and, worse, a stray scrub literal can zero an object the pool still
// references.
func runPoolLiteral(p *Package, cfg *Config) []Finding {
	if len(cfg.PooledTypes) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(lit)
			if t == nil {
				return true
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			factories, pooled := cfg.PooledTypes[qual]
			if !pooled {
				return true
			}
			pos := p.Fset.Position(lit.Pos())
			base := filepath.Base(pos.Filename)
			for _, allowed := range factories {
				if base == allowed {
					return true
				}
			}
			out = append(out, Finding{
				Pos:  pos,
				Rule: "pool-literal",
				Msg: fmt.Sprintf("pooled type %s constructed by composite literal outside its factory (%s): use the factory so the free list stays the only owner",
					qual, strings.Join(factories, ", ")),
			})
			return true
		})
	}
	return out
}

// runUseAfterRelease is an intra-function, block-sequential dataflow
// check: once a statement releases a variable (x.Release(),
// s.RemoveVariable(x), …), any read of that variable in a later
// statement of the same block is a finding until the variable is
// reassigned. Released objects belong to the pool; the next factory
// call may hand them to an unrelated owner.
func runUseAfterRelease(p *Package, cfg *Config) []Finding {
	if len(cfg.ReleaseMethods) == 0 && len(cfg.ReleaseFuncs) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch b := n.(type) {
				case *ast.BlockStmt:
					out = append(out, scanStmtSeq(p, cfg, b.List)...)
				case *ast.CaseClause:
					out = append(out, scanStmtSeq(p, cfg, b.Body)...)
				case *ast.CommClause:
					out = append(out, scanStmtSeq(p, cfg, b.Body)...)
				}
				return true
			})
		}
	}
	return out
}

// scanStmtSeq walks one statement list in order, tracking which
// variables were released by a top-level statement and reporting later
// reads. Nested blocks are handled by their own scanStmtSeq pass (a
// release inside an if-branch only poisons that branch), and function
// literals are skipped entirely: their body does not execute in
// statement order.
func scanStmtSeq(p *Package, cfg *Config, stmts []ast.Stmt) []Finding {
	var out []Finding
	released := make(map[*types.Var]string) // var -> releasing call, for the message
	for _, st := range stmts {
		if len(released) > 0 {
			// Reassignment anywhere in this statement un-poisons the
			// variable before we look for reads (lenient: `x = fresh()`
			// makes x safe again).
			forEachAssignedVar(p, st, func(v *types.Var) {
				delete(released, v)
			})
			reported := make(map[*types.Var]bool)
			walkSkippingFuncLits(st, func(n ast.Node) {
				id, ok := n.(*ast.Ident)
				if !ok {
					return
				}
				v, ok := p.Info.Uses[id].(*types.Var)
				if !ok {
					return
				}
				call, rel := released[v]
				if !rel || reported[v] {
					return
				}
				reported[v] = true
				out = append(out, Finding{
					Pos:  p.Fset.Position(id.Pos()),
					Rule: "pool-use-after-release",
					Msg:  fmt.Sprintf("use of %s after %s released it: the object belongs to the pool now and may be handed to another owner", v.Name(), call),
				})
			})
		}
		if v, call, ok := releasedVar(p, cfg, st); ok {
			released[v] = call
		}
	}
	return out
}

// releasedVar reports whether st is a top-level release call and which
// variable it releases. Only plain identifiers are tracked; releasing
// a field or element (a.v) is out of scope for the intra-function
// check.
func releasedVar(p *Package, cfg *Config, st ast.Stmt) (*types.Var, string, bool) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return nil, "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if cfg.ReleaseMethods[name] {
			// x.Release(): the receiver is the victim.
			if id, ok := fun.X.(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok {
					return v, id.Name + "." + name + "()", true
				}
			}
		}
		if cfg.ReleaseFuncs[name] && len(call.Args) > 0 {
			// s.RemoveVariable(x): the first argument is the victim.
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok {
					return v, name + "(" + id.Name + ")", true
				}
			}
		}
	case *ast.Ident:
		if cfg.ReleaseFuncs[fun.Name] && len(call.Args) > 0 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if v, ok := p.Info.Uses[id].(*types.Var); ok {
					return v, fun.Name + "(" + id.Name + ")", true
				}
			}
		}
	}
	return nil, "", false
}

// forEachAssignedVar calls fn for every variable assigned (=, :=) as a
// plain identifier anywhere inside st.
func forEachAssignedVar(p *Package, st ast.Stmt, fn func(*types.Var)) {
	walkSkippingFuncLits(st, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := p.Info.Uses[id].(*types.Var); ok {
				fn(v)
			} else if v, ok := p.Info.Defs[id].(*types.Var); ok {
				fn(v)
			}
		}
	})
}

// walkSkippingFuncLits visits every node under root except function
// literal bodies.
func walkSkippingFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
