package lint

// DefaultConfig is the project's contract configuration: it binds each
// rule to the packages and names whose invariants DESIGN.md states in
// prose ("Enforced invariants" maps each prose rule to its rule ID
// here). cmd/simgrid-lint and the module-clean regression test both
// run with exactly this config.
func DefaultConfig() *Config {
	const mod = "repro"
	internal := func(names ...string) map[string]bool {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[mod+"/internal/"+n] = true
		}
		return m
	}
	return &Config{
		// The reproducibility kernel: every package on the simulated
		// event path. A map walk or stray goroutine here changes event
		// order between runs. faults is included because a fault
		// schedule's compile-time draws and injection-time callbacks are
		// both on the byte-for-byte replay contract. instr is included
		// because trace bytes must be a pure function of the run: a map
		// walk in an emitter would reorder events between runs.
		// sweep is included because a campaign report's bytes are on the
		// same replay contract: the grid expansion and per-run stats
		// must be a pure function of (spec, seed) at any fanout.
		DetPkgs: internal("core", "surf", "maxmin", "msg", "simdag", "faults", "instr", "sweep"),

		// Everything under internal/ that participates in (or reports
		// on) simulation runs. Deliberate wallclock reads — SMPI-style
		// benching of real compute, solver self-timing in the
		// validation drivers, the real-network gras backend — carry
		// //lint:allow annotations stating exactly that.
		// instr's profiler owns the single sanctioned host-clock read
		// (Profiler.now, with its inline allow); every other instr path
		// is stamped with simulated time only.
		WallclockPkgs: internal(
			"core", "surf", "maxmin", "msg", "simdag", "faults",
			"smpi", "gras", "pastry", "validate",
			"trace", "platform", "packet", "deploy", "gantt",
			"instr", "sweep",
		),

		// Packages PR 3 converted from Sprintf to concatenation on
		// their name-building hot paths.
		HotPkgs: internal("core", "surf", "maxmin", "msg", "simdag"),

		// The only sanctioned goroutine spawn site on kernel paths:
		// worker creation in the core pool (Engine.Spawn now grabs a
		// pooled worker and falls back to newWorker). (The maxmin
		// parallel-solve worker pool carries an inline allow annotation
		// instead — it is an explicitly justified exception, not a
		// standing grant.)
		GoroutineAllow: map[string]bool{
			"repro/internal/core.newWorker": true,
			// Campaign fanout workers in the sweep harness: host-side
			// orchestration over isolated per-run engines, with results
			// ordered by run index so scheduling never reaches the
			// report bytes.
			"repro/internal/sweep.Execute": true,
		},

		// Pooled types and the factory files allowed to construct or
		// scrub them by composite literal (DESIGN.md "Object lifecycle
		// & pooling" ownership table).
		PooledTypes: map[string][]string{
			"repro/internal/maxmin.Variable": {"factory.go"},
			"repro/internal/surf.Action":     {"factory.go"},
			"repro/internal/msg.pendingSend": {"factory.go"},
			"repro/internal/msg.pendingRecv": {"factory.go"},
			"repro/internal/msg.ChainProc":   {"factory.go"},
			"repro/internal/core.worker":     {"factory.go"},
		},

		// Release vocabulary for the use-after-release dataflow check.
		ReleaseMethods: map[string]bool{"Release": true},
		ReleaseFuncs: map[string]bool{
			"RemoveVariable": true,
			"releaseSend":    true,
			"releaseRecv":    true,
			"releaseChain":   true,
			"releaseWorker":  true,
			"poolAction":     true,
		},

		// Blocking simcall entry points: everything that parks the
		// calling goroutine on the kernel.
		BlockingFuncs: map[string]bool{
			"(*repro/internal/core.Process).Block":        true,
			"(*repro/internal/core.Process).BlockOn":      true,
			"(*repro/internal/core.Process).blockOn":      true,
			"(*repro/internal/core.Process).park":         true,
			"(*repro/internal/core.Process).WaitActivity": true,
			"(*repro/internal/core.Process).Sleep":        true,
			"(*repro/internal/core.Process).Yield":        true,
		},

		// Completion handlers run in kernel context.
		CompletionIfaces: []string{"repro/internal/surf.Completion"},
	}
}
