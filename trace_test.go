// TestTraceDeterminism pins the observability contract: with tracing
// enabled, the Paje trace bytes are a pure function of the run — five
// executions of the seeded backbone workload (the TestDeterminism
// platform) produce bit-identical output, in both the pooled and the
// -tags=nopool lanes. TestDisabledHooksAllocFree pins the other half
// of the contract: the disabled-instrumentation surface (nil trace,
// nil profiler, nil registry handles) allocates nothing, so a run that
// never calls EnableTrace pays pointer tests only.
package simgrid

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/instr"
	"repro/internal/msg"
	"repro/internal/surf"
)

// runTracedWorkload runs the determinism workload with tracing enabled
// and returns the trace bytes.
func runTracedWorkload(t *testing.T, nPairs, rounds int, seed int64) []byte {
	t.Helper()
	pf := determinismPlatform(t, nPairs)
	rng := rand.New(rand.NewSource(seed))
	env := msg.NewEnvironment(pf, surf.DefaultConfig())
	var buf bytes.Buffer
	env.EnableTrace(instr.NewTrace(&buf))
	const channel = 7
	for i := 0; i < nPairs; i++ {
		i := i
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		bytes := 1e4 * (1 + rng.Float64()*9)
		flops := 1e5 * (1 + rng.Float64()*9)
		sleep := rng.Float64() * 1e-3
		if i%3 == 0 { // a third of the pairs complete in lockstep
			bytes, flops, sleep = 5e4, 5e5, 0
		}
		if _, err := env.NewProcess("recv", dst, func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if _, err := p.Get(channel); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := env.NewProcess("send", src, func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if sleep > 0 {
					if err := p.Sleep(sleep); err != nil {
						return err
					}
				}
				if err := p.Put(msg.NewTask(fmt.Sprintf("t%d", i), 0, bytes), dst, channel); err != nil {
					return err
				}
				if err := p.Execute(msg.NewTask("c", flops, 0)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := env.Trace().Close(); err != nil {
		t.Fatalf("closing trace: %v", err)
	}
	return buf.Bytes()
}

func TestTraceDeterminism(t *testing.T) {
	const nPairs, rounds, seed, runs = 20, 5, 12345, 5
	ref := runTracedWorkload(t, nPairs, rounds, seed)
	if len(ref) == 0 {
		t.Fatal("empty trace")
	}
	for run := 1; run < runs; run++ {
		got := runTracedWorkload(t, nPairs, rounds, seed)
		if !bytes.Equal(got, ref) {
			refLines := bytes.Split(ref, []byte("\n"))
			gotLines := bytes.Split(got, []byte("\n"))
			for i := range refLines {
				if i >= len(gotLines) || !bytes.Equal(refLines[i], gotLines[i]) {
					gotLine := []byte("<missing>")
					if i < len(gotLines) {
						gotLine = gotLines[i]
					}
					t.Fatalf("run %d: trace line %d differs:\n  ref: %s\n  got: %s",
						run, i+1, refLines[i], gotLine)
				}
			}
			t.Fatalf("run %d: trace differs in length: ref %d bytes, got %d", run, len(ref), len(got))
		}
	}

	// The bytes must also decode: every band's events round-trip
	// through the reader the ganttgen -paje path uses.
	td, err := instr.ReadTrace(bytes.NewReader(ref))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	wantConts := 1 + 2*nPairs + 2*nPairs + 1 + 2*nPairs // root + hosts + up/down links + backbone + processes
	if len(td.Containers) != wantConts {
		t.Errorf("trace has %d containers, want %d", len(td.Containers), wantConts)
	}
	if len(td.Links) != nPairs*rounds {
		t.Errorf("trace has %d message links, want %d", len(td.Links), nPairs*rounds)
	}
	if len(td.Intervals) == 0 {
		t.Error("trace has no state intervals")
	}
	if td.EndTime <= 0 {
		t.Errorf("trace end time %g, want > 0", td.EndTime)
	}
}

// TestDisabledHooksAllocFree pins that the whole disabled-mode
// instrumentation surface — the calls a run makes when tracing,
// metrics, and profiling are all off — performs zero allocations, so
// hot kernel paths pay only nil tests.
func TestDisabledHooksAllocFree(t *testing.T) {
	pf := determinismPlatform(t, 2)
	env := msg.NewEnvironment(pf, surf.DefaultConfig())
	var nilReg *instr.Registry
	var nilProf *instr.Profiler
	var nilTrace *instr.Trace
	allocs := testing.AllocsPerRun(200, func() {
		// The layer-level collection entry points with metrics off.
		env.MetricsInto(nil)
		env.Model().EnableMetrics(nil)
		// The per-phase profiler hooks with profiling off.
		t0 := nilProf.Begin()
		nilProf.End(instr.PhaseSolve, t0)
		// The registry/trace handles a disabled run never populates.
		nilReg.Counter("x").Inc()
		nilReg.Gauge("x").Set(1)
		nilReg.Weighted("x").Observe(1, 2)
		nilTrace.SetState(0, "t0", "c0", "v")
		if env.Trace() != nil {
			t.Error("trace should be nil")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation hooks allocate: %.1f allocs/run, want 0", allocs)
	}
}
