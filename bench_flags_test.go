// Benchmark knobs shared by the scaling/solver benchmarks. CI's race
// lane runs the ParallelSolve benchmarks with -solver-workers 4 so the
// worker pool is exercised at a fixed fan-out regardless of the
// runner's GOMAXPROCS.
package simgrid

import "flag"

// solverWorkers sets the worker-pool size used by the parallel modes of
// BenchmarkMSGScalingParallelSolve and BenchmarkMaxMinParallelSolve.
// 0 (the default) keeps the GOMAXPROCS-sized pool.
var solverWorkers = flag.Int("solver-workers", 0,
	"worker pool size for the parallel-solve benchmarks (0 = GOMAXPROCS)")
