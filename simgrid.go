// Package simgrid is a from-scratch Go reproduction of the SimGrid
// project as described in "The SimGrid Project: Simulation and
// Deployment of Distributed Applications" (Legrand, Quinson, Casanova,
// Fujiwara — HPDC 2006): a discrete-event simulator for distributed
// applications built on a MaxMin-fairness fluid resource model (SURF),
// with three user-facing APIs — MSG for rapid prototyping, GRAS for
// applications that run both simulated and on real networks, and SMPI
// for simulating MPI programs on heterogeneous platforms — plus the
// substrates its evaluation depends on (a Waxman/BRITE topology
// generator and a packet-level TCP comparator).
//
// This root package is a façade re-exporting the main entry points;
// the implementation lives under internal/ (see DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-vs-measured
// record). The benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation.
package simgrid

import (
	"repro/internal/gras"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/smpi"
	"repro/internal/surf"
)

// Re-exported platform types.
type (
	// Platform describes simulated hardware: hosts, links, routes.
	Platform = platform.Platform
	// Host is a computing resource.
	Host = platform.Host
	// Link is a network resource.
	Link = platform.Link
	// SurfConfig tunes the fluid network model.
	SurfConfig = surf.Config
)

// Re-exported API surfaces.
type (
	// MSGEnvironment is the MSG world (prototyping API).
	MSGEnvironment = msg.Environment
	// MSGProcess is a simulated MSG process.
	MSGProcess = msg.Process
	// MSGTask is a task with compute and communication payloads.
	MSGTask = msg.Task
	// GRASWorld is the GRAS simulation universe.
	GRASWorld = gras.World
	// GRASNode is the API GRAS application code is written against.
	GRASNode = gras.Node
	// SMPIWorld is one simulated MPI job.
	SMPIWorld = smpi.World
	// SMPIRank is one MPI rank.
	SMPIRank = smpi.Rank
)

// NewPlatform returns an empty platform description.
func NewPlatform() *Platform { return platform.New() }

// GenerateWaxman builds a BRITE-like random topology.
func GenerateWaxman(nodes int, seed int64) (*Platform, error) {
	return platform.GenerateWaxman(platform.DefaultWaxmanConfig(nodes, seed))
}

// DefaultConfig returns the calibrated fluid-model configuration.
func DefaultConfig() SurfConfig { return surf.DefaultConfig() }

// NewMSG builds an MSG environment on a platform (MSG_global_init).
func NewMSG(pf *Platform, cfg SurfConfig) *MSGEnvironment {
	return msg.NewEnvironment(pf, cfg)
}

// NewMSGTask builds a task (MSG_task_create).
func NewMSGTask(name string, flops, bytes float64) *MSGTask {
	return msg.NewTask(name, flops, bytes)
}

// NewGRAS builds a GRAS simulation world.
func NewGRAS(pf *Platform, cfg SurfConfig) *GRASWorld {
	return gras.NewWorld(pf, cfg)
}

// NewSMPI builds an MPI job with one rank per host name.
func NewSMPI(pf *Platform, cfg SurfConfig, hosts []string) (*SMPIWorld, error) {
	return smpi.New(pf, cfg, hosts)
}
